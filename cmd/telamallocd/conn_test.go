package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"telamalloc/internal/faultinject"
	"telamalloc/internal/server"
	"telamalloc/internal/wire"
)

// harness runs a tcpDaemon on an ephemeral port for one test.
type harness struct {
	d    *tcpDaemon
	hlt  *health
	addr string

	done    chan error
	waitMu  sync.Mutex
	waited  bool
	waitErr error
}

// startDaemon boots a daemon with the given server config and connection
// limits. hook may be nil. The test owns shutdown via h.shutdown(t).
func startDaemon(t *testing.T, srvCfg server.Config, idle time.Duration, maxConns, maxLine int, drainTO time.Duration, hook func(string) bool) *harness {
	t.Helper()
	if srvCfg.Workers == 0 {
		srvCfg.Workers = 2
	}
	if srvCfg.QueueDepth == 0 {
		srvCfg.QueueDepth = 16
	}
	srv := server.New(srvCfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hlt := &health{}
	d := newTCPDaemon(srv, ln, hlt, idle, maxConns, maxLine, drainTO)
	d.hook = hook
	hlt.setReady(true)
	h := &harness{d: d, hlt: hlt, addr: ln.Addr().String(), done: make(chan error, 1)}
	go func() { h.done <- d.run() }()
	t.Cleanup(func() {
		d.shutdownNow()
		h.wait(t)
	})
	return h
}

// wait blocks until run() returns (memoized — safe to call twice).
func (h *harness) wait(t *testing.T) error {
	t.Helper()
	h.waitMu.Lock()
	defer h.waitMu.Unlock()
	if h.waited {
		return h.waitErr
	}
	select {
	case h.waitErr = <-h.done:
		h.waited = true
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not stop within 15s: shutdown is unbounded")
	}
	return h.waitErr
}

func (h *harness) dial(t *testing.T) *net.TCPConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", h.addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", h.addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.(*net.TCPConn)
}

// waitConns polls until n connections hold slots — i.e. the accept loop has
// admitted them — so a test can race shutdown against *served* connections
// rather than against the accept loop itself.
func (h *harness) waitConns(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(h.d.sem) != n {
		if time.Now().After(deadline) {
			t.Fatalf("daemon holds %d connection slots, want %d", len(h.d.sem), n)
		}
		time.Sleep(time.Millisecond)
	}
}

const solveLine = `{"id":"%s","memory":8,"buffers":[{"start":0,"end":4,"size":4},{"start":4,"end":8,"size":4}]}` + "\n"

// readReport reads one report line from conn with a deadline.
func readReport(t *testing.T, conn net.Conn) wireResponse {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading report: %v (got %q)", err, line)
	}
	var resp wireResponse
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("unparseable report %q: %v", line, err)
	}
	return resp
}

// readReports drains conn to EOF (or error) and returns every report line.
func readReports(t *testing.T, conn net.Conn) []wireResponse {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var out []wireResponse
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var resp wireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("unparseable report %q: %v", sc.Text(), err)
		}
		out = append(out, resp)
	}
	return out
}

func TestConnLimitShedsTyped(t *testing.T) {
	h := startDaemon(t, server.Config{}, 0, 1, 0, time.Second, nil)

	// First connection takes the only slot and must keep working.
	c1 := h.dial(t)
	h.waitConns(t, 1)

	// Second connection is shed with one typed report, then closed.
	c2 := h.dial(t)
	shed := readReport(t, c2)
	if shed.Outcome != wire.OutcomeShed || shed.ErrorCode != wire.CodeTooManyConnections {
		t.Errorf("over-limit connection got %+v, want shed/too_many_connections", shed)
	}
	if shed.RetryAfterMS <= 0 {
		t.Errorf("shed connection report missing retry_after_ms: %+v", shed)
	}
	if extra := readReports(t, c2); len(extra) != 0 {
		t.Errorf("shed connection got %d extra reports: %v", len(extra), extra)
	}

	// Shedding the second connection must not disturb the first.
	fmt.Fprintf(c1, solveLine, "keep")
	if got := readReport(t, c1); got.Outcome != wire.OutcomeSolved {
		t.Errorf("held connection got %+v, want solved", got)
	}

	// Releasing the slot frees it for a new connection.
	c1.Close()
	h.waitConns(t, 0)
	c3 := h.dial(t)
	fmt.Fprintf(c3, solveLine, "again")
	if got := readReport(t, c3); got.Outcome != wire.OutcomeSolved {
		t.Errorf("post-release connection got %+v, want solved", got)
	}
}

func TestIdleConnectionTimesOutTyped(t *testing.T) {
	h := startDaemon(t, server.Config{}, 50*time.Millisecond, 4, 0, time.Second, nil)
	conn := h.dial(t)
	got := readReport(t, conn) // just wait: the daemon must hang up on us
	if got.Outcome != wire.OutcomeRejected || got.ErrorCode != wire.CodeIdleTimeout {
		t.Errorf("idle connection got %+v, want rejected/idle_timeout", got)
	}
	if extra := readReports(t, conn); len(extra) != 0 {
		t.Errorf("idle connection got %d reports after the timeout: %v", len(extra), extra)
	}
}

func TestIdleTimeoutMeasuresSilence(t *testing.T) {
	// Traffic resets the idle window: a connection issuing requests more
	// often than the timeout must never be reaped.
	h := startDaemon(t, server.Config{}, 120*time.Millisecond, 4, 0, time.Second, nil)
	conn := h.dial(t)
	for i := 0; i < 5; i++ {
		time.Sleep(60 * time.Millisecond)
		fmt.Fprintf(conn, solveLine, fmt.Sprintf("r%d", i))
		if got := readReport(t, conn); got.Outcome != wire.OutcomeSolved {
			t.Fatalf("request %d on an active connection got %+v, want solved", i, got)
		}
	}
}

func TestOversizedLineRejectedTyped(t *testing.T) {
	h := startDaemon(t, server.Config{}, 0, 4, 1<<16, time.Second, nil)
	conn := h.dial(t)
	// Write far past the cap without a newline; the write runs concurrently
	// because the daemon stops reading once the scanner overflows.
	go func() {
		junk := strings.Repeat("a", 1<<18)
		conn.Write([]byte(junk))
	}()
	got := readReport(t, conn)
	if got.Outcome != wire.OutcomeRejected || got.ErrorCode != wire.CodeLineTooLong {
		t.Errorf("oversized line got %+v, want rejected/line_too_long", got)
	}
}

func TestMidLineDisconnectRejectedTyped(t *testing.T) {
	h := startDaemon(t, server.Config{}, 0, 4, 0, time.Second, nil)
	conn := h.dial(t)
	// A half-written request followed by FIN: the fragment must surface as
	// a typed truncated_line rejection, never be parsed as a request.
	if _, err := conn.Write([]byte(`{"id":"half","memory":8`)); err != nil {
		t.Fatal(err)
	}
	if err := conn.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	got := readReport(t, conn)
	if got.Outcome != wire.OutcomeRejected || got.ErrorCode != wire.CodeTruncatedLine {
		t.Errorf("mid-line disconnect got %+v, want rejected/truncated_line", got)
	}
}

// TestShutdownDrainsMixedConnections is the drain-hang regression test: a
// SIGTERM-equivalent shutdown must complete within DrainTimeout with a mix
// of idle, half-written, and mid-request connections open. The idle and
// half-written connections previously wedged wg.Wait() forever — their
// scanners sat in Read with no deadline and no shutdown signal.
func TestShutdownDrainsMixedConnections(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{})
	var arrivedOnce sync.Once
	hook := func(point string) bool {
		if point == faultinject.PointServerDequeue {
			arrivedOnce.Do(func() { close(arrived) })
			<-gate // parks the mid-request job until the test releases it
		}
		return false
	}
	h := startDaemon(t, server.Config{Workers: 1, Hook: hook}, 0, 8, 0, 2*time.Second, nil)

	idle := h.dial(t)
	half := h.dial(t)
	mid := h.dial(t)
	h.waitConns(t, 3)
	if _, err := half.Write([]byte(`{"id":"half","memory":8`)); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(mid, solveLine, "inflight")
	select {
	case <-arrived: // the request is in a worker, parked at the gate
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached a worker")
	}

	start := time.Now()
	h.d.shutdownNow()

	// The idle and half-written connections must learn about the shutdown
	// immediately — while the in-flight job is still parked — proving
	// connection teardown does not wait on the drain.
	for name, conn := range map[string]net.Conn{"idle": idle, "half-written": half} {
		got := readReport(t, conn)
		if got.Outcome != wire.OutcomeRejected || got.ErrorCode != wire.CodeShuttingDown {
			t.Errorf("%s connection got %+v, want rejected/shutting_down", name, got)
		}
	}

	// Release the parked job; it must still reach a terminal outcome and
	// deliver its report on the (still open) connection.
	close(gate)
	outcomes := map[string]string{}
	for _, r := range readReports(t, mid) {
		outcomes[r.ID] = r.Outcome
	}
	if outcomes["inflight"] != wire.OutcomeSolved {
		t.Errorf("in-flight request ended %q, want solved (reports: %v)", outcomes["inflight"], outcomes)
	}

	if err := h.wait(t); err != nil {
		t.Errorf("drain with mixed connections returned %v, want clean nil", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("shutdown took %v; the drain bound is not holding", elapsed)
	}
}

// TestShutdownForceCancelsStuckWork: a non-cooperative stall (a wedged
// policy, modeled by a solver-point stall fault) cannot finish inside
// DrainTimeout, so the drain must force-cancel it and report ErrDrainTimeout
// — the exit-code-3 path — instead of hanging.
func TestShutdownForceCancelsStuckWork(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Point: "group0", Kind: faultinject.Stall, StallFor: 900 * time.Millisecond})
	h := startDaemon(t, server.Config{Workers: 1, Hook: inj.Hook}, 0, 4, 0, 150*time.Millisecond, nil)

	conn := h.dial(t)
	// Concurrent 7-in-64 buffers: defeats the heuristics, so the solve
	// enters the search and hits the stalled group0 point.
	var bufs []string
	for i := 0; i < 30; i++ {
		bufs = append(bufs, `{"start":0,"end":10,"size":7}`)
	}
	fmt.Fprintf(conn, `{"id":"stuck","memory":64,"buffers":[%s]}`+"\n", strings.Join(bufs, ","))

	// Wait for the stall to arm so shutdown races a genuinely wedged solve.
	deadline := time.Now().Add(5 * time.Second)
	for len(inj.Fired()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stall fault never fired; the request did not reach the solver")
		}
		time.Sleep(time.Millisecond)
	}

	h.d.shutdownNow()
	err := h.wait(t)
	if !errors.Is(err, server.ErrDrainTimeout) {
		t.Errorf("drain against a wedged solve returned %v, want ErrDrainTimeout", err)
	}

	// The wedged request still ends in exactly one terminal outcome.
	outcomes := map[string]string{}
	for _, r := range readReports(t, conn) {
		if r.ID != "" {
			outcomes[r.ID] = r.Outcome
		}
	}
	switch outcomes["stuck"] {
	case wire.OutcomeCancelled, wire.OutcomeFailed, wire.OutcomeDegraded, wire.OutcomeSolved:
	default:
		t.Errorf("force-cancelled request ended %q, want a terminal outcome (reports: %v)", outcomes["stuck"], outcomes)
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := startDaemon(t, server.Config{}, 0, 4, 0, time.Second, nil)
	mux := obsMux(h.hlt)
	get := func(path string) int {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Code
	}

	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while serving = %d, want 200", code)
	}

	h.d.shutdownNow()

	// Readiness flips with the shutdown — and liveness does not: a draining
	// daemon is still alive, just not accepting new work.
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	if conn, err := net.DialTimeout("tcp", h.addr, time.Second); err == nil {
		conn.Close()
		t.Error("listener still accepting after shutdown began")
	}
}

func TestAcceptStarveShedsConnection(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Point: faultinject.PointConnAccept, Kind: faultinject.Starve})
	h := startDaemon(t, server.Config{}, 0, 8, 0, time.Second, inj.Hook)
	conn := h.dial(t)
	got := readReport(t, conn)
	if got.Outcome != wire.OutcomeShed || got.ErrorCode != wire.CodeTooManyConnections {
		t.Errorf("starved accept got %+v, want shed/too_many_connections", got)
	}
}

func TestReadStarveSynthesizesIdleTimeout(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{Point: faultinject.PointConnRead, Kind: faultinject.Starve})
	// Idle timeout of an hour: the typed report must come from the injected
	// fault, not the real clock.
	h := startDaemon(t, server.Config{}, time.Hour, 8, 0, time.Second, inj.Hook)
	conn := h.dial(t)
	got := readReport(t, conn)
	if got.Outcome != wire.OutcomeRejected || got.ErrorCode != wire.CodeIdleTimeout {
		t.Errorf("starved read got %+v, want rejected/idle_timeout", got)
	}
}
