// The chaos soak (make chaossoak): a real daemon subprocess is killed -9 and
// restarted mid-flood while a client fleet hammers it, then SIGTERMed with a
// slowloris, an idle connection, and a long-running solve armed. The
// acceptance contract (DESIGN.md §13): every request ends in exactly one of
// {solved, degraded, typed error}, and the drain is bounded.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"telamalloc/internal/client"
	"telamalloc/internal/wire"
)

func TestChaosSoak(t *testing.T) {
	if os.Getenv("TELAMALLOC_CHAOSSOAK") == "" {
		t.Skip("set TELAMALLOC_CHAOSSOAK=1 (make chaossoak) to run the subprocess chaos soak")
	}

	bin := filepath.Join(t.TempDir(), "telamallocd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}

	// A fixed port, so the restarted daemon is reachable at the address the
	// fleet keeps retrying.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	proc := startDaemonProc(t, bin, addr)

	c, err := client.Dial(client.Config{
		Addr:        addr,
		MaxAttempts: -1, // retry until each request's context ends
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		fleet     = 8
		perWorker = 30
		total     = fleet * perWorker
	)
	type result struct {
		outcome string
		err     error
	}
	results := make(chan result, total)
	for w := 0; w < fleet; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				rep, serr := c.Submit(ctx, client.Request{
					ID:     fmt.Sprintf("w%d-r%d", w, i),
					Name:   fmt.Sprintf("soak-%d", w),
					Memory: 8,
					Buffers: []wire.Buffer{
						{Start: 0, End: 4, Size: 4},
						{Start: 4, End: 8, Size: 4},
					},
					Timeout: 2 * time.Second,
				})
				cancel()
				if serr != nil {
					results <- result{err: serr}
				} else {
					results <- result{outcome: rep.Outcome}
				}
			}
		}(w)
	}

	// Collect every result, SIGKILLing and restarting the daemon a third of
	// the way through the flood. Exactly-once: total results must equal
	// total requests, and every error must be typed.
	counts := map[string]int{}
	killed := false
	overall := time.After(3 * time.Minute)
	for got := 0; got < total; got++ {
		var r result
		select {
		case r = <-results:
		case <-overall:
			t.Fatalf("soak stalled: %d/%d results after 3m (%v)", got, total, counts)
		}
		switch {
		case r.err == nil:
			counts[r.outcome]++
		case errors.Is(r.err, client.ErrAmbiguous):
			counts["ambiguous"]++
		case errors.Is(r.err, client.ErrRetriesExhausted):
			counts["retries_exhausted"]++
		case errors.Is(r.err, context.DeadlineExceeded), errors.Is(r.err, context.Canceled):
			counts["ctx_expired"]++
		default:
			counts["UNTYPED"]++
			t.Errorf("untyped terminal error: %v", r.err)
		}
		if !killed && got >= total/3 {
			killed = true
			t.Logf("kill -9 after %d results: %v", got, counts)
			proc.Process.Kill()
			proc.Wait()
			proc = startDaemonProc(t, bin, addr)
		}
	}
	t.Logf("flood outcomes: %v", counts)
	if !killed {
		t.Error("daemon was never killed; the soak did not exercise the crash path")
	}
	if counts["solved"] == 0 {
		t.Errorf("no request solved across the soak: %v", counts)
	}

	// The restarted daemon must actually serve: one clean post-crash solve.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	rep, err := c.Submit(ctx, client.Request{
		ID: "post-restart", Memory: 8,
		Buffers: []wire.Buffer{{Start: 0, End: 4, Size: 4}},
	})
	cancel()
	if err != nil || rep.Outcome != wire.OutcomeSolved {
		t.Fatalf("post-restart solve: %+v, %v", rep, err)
	}

	// Phase 2: SIGTERM with hostile connections armed. A slowloris dribbling
	// bytes, an idle connection, and a long-budget solve in flight must not
	// stop the drain from completing within -drain-timeout (plus slack).
	idle, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	loris, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer loris.Close()
	go func() {
		// One byte of a never-finished request line at a time.
		for {
			if _, werr := loris.Write([]byte(`{`)); werr != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	heavy, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer heavy.Close()
	var bufs []string
	for i := 0; i < 30; i++ {
		bufs = append(bufs, `{"start":0,"end":10,"size":7}`)
	}
	fmt.Fprintf(heavy, `{"id":"heavy","memory":64,"timeout_ms":20000,"buffers":[%s]}`+"\n", strings.Join(bufs, ","))
	time.Sleep(300 * time.Millisecond) // let the heavy solve get admitted

	proc.Process.Signal(syscall.SIGTERM)
	exited := make(chan error, 1)
	go func() { exited <- proc.Wait() }()
	select {
	case <-exited:
	case <-time.After(15 * time.Second):
		proc.Process.Kill()
		t.Fatal("daemon did not exit within 15s of SIGTERM: drain is unbounded under hostile connections")
	}
	if code := proc.ProcessState.ExitCode(); code != 0 && code != 3 {
		t.Errorf("SIGTERM exit code %d, want 0 (clean drain) or 3 (forced drain)", code)
	}
}

// startDaemonProc launches the built daemon and waits until it accepts.
func startDaemonProc(t *testing.T, bin, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-listen", addr, "-q",
		"-drain-timeout", "1s",
		"-req-timeout", "5s",
		"-idle-timeout", "10s",
		"-watchdog-multiple", "4",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became reachable: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
