package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"telamalloc/internal/check"
)

// session builds a JSONL transcript from interleaved request/report lines.
func session(lines ...string) *bytes.Buffer {
	return bytes.NewBufferString(strings.Join(lines, "\n") + "\n")
}

const (
	goodReq = `{"id":"r1","memory":16,"buffers":[{"start":0,"end":4,"size":8},{"start":0,"end":4,"size":8}]}`
	goodRep = `{"v":1,"id":"r1","outcome":"solved","winner":"greedy","offsets":[0,8],"lower_bound":16,"memory":16}`
)

func TestVerifySessionClean(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(nil, session(goodReq, goodRep), &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d on a clean session; stderr:\n%s", code, errw.String())
	}
	if !strings.Contains(out.String(), "1 reports verified, 0 violations") {
		t.Fatalf("unexpected summary: %q", out.String())
	}
}

func TestVerifySessionViolations(t *testing.T) {
	cases := []struct {
		name  string
		lines []string
		want  string
	}{
		{
			"overlapping offsets",
			[]string{goodReq, `{"v":1,"id":"r1","outcome":"solved","winner":"greedy","offsets":[0,4],"lower_bound":16,"memory":16}`},
			"conflict",
		},
		{
			"fake infeasibility claim",
			[]string{
				`{"id":"r2","memory":64,"buffers":[{"start":0,"end":4,"size":8}]}`,
				`{"v":1,"id":"r2","outcome":"failed","lower_bound":80,"memory":64,"error":"no packing"}`,
			},
			"claimed infeasibility",
		},
		{
			"unanswered request",
			[]string{goodReq},
			"never answered",
		},
		{
			"orphan report",
			[]string{goodRep},
			"unknown request id",
		},
		{
			"tampered evidence",
			[]string{goodReq, `{"v":1,"id":"r1","outcome":"solved","winner":"greedy","offsets":[0,8],"lower_bound":12,"memory":16}`},
			"lower bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw bytes.Buffer
			code := run(nil, session(tc.lines...), &out, &errw)
			if code != 1 {
				t.Fatalf("exit %d, want 1; stderr:\n%s", code, errw.String())
			}
			if !strings.Contains(errw.String(), tc.want) {
				t.Fatalf("stderr %q does not mention %q", errw.String(), tc.want)
			}
		})
	}
}

func TestVerifySessionFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.jsonl")
	if err := os.WriteFile(path, session(goodReq, goodRep).Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-in", path}, nil, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errw.String())
	}
}

// TestDiffMode runs the sweep with a reduced seed set and checks the
// scorecard lands on disk, parses, and matches a direct library run — the
// CLI is a thin shell around check.RunDifferential, and must stay one.
func TestDiffMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "card.json")
	var out, errw bytes.Buffer
	if code := run([]string{"-diff", "-seeds", "3", "-out", path}, nil, &out, &errw); code != 0 {
		t.Fatalf("exit %d; stderr:\n%s", code, errw.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var card check.Scorecard
	if err := json.Unmarshal(raw, &card); err != nil {
		t.Fatalf("scorecard does not parse: %v", err)
	}
	want, _, err := check.RunDifferential(check.DiffConfig{Seeds: []int64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(want)
	cj, _ := json.Marshal(card)
	if !bytes.Equal(wj, cj) {
		t.Fatalf("CLI scorecard diverges from the library run:\n%s\n%s", cj, wj)
	}
	if !strings.Contains(out.String(), "instances") {
		t.Fatalf("missing summary line: %q", out.String())
	}
}
