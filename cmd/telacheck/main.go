// Command telacheck is the offline verification tool for the allocation
// service: it re-checks served results with the independent checker
// (internal/check), which shares no code with the solver's own validators.
//
// Modes:
//
//	telacheck [-in session.jsonl]
//	    Verify a captured wire session: a JSONL stream of interleaved
//	    request and report lines (the daemon's stdin/stdout transcript, or
//	    any capture of the TCP line protocol). Lines with an "outcome"
//	    field are reports; they are paired with their request by id and
//	    every verdict is re-verified — packing, spill plan, alignment,
//	    lower-bound evidence, infeasibility claims. Exit 1 on any
//	    violation, unpaired report, or unanswered request.
//
//	telacheck -diff [-seeds n] [-out BENCH_diff.json]
//	    Run the differential oracle sweep (heuristic ladder vs exact
//	    branch-and-bound on the adversarial families) and write the
//	    machine-readable scorecard. Exit 1 if the ladder claimed a packing
//	    on an oracle-proven-infeasible instance or the checker rejected a
//	    claimed packing. Step budgets are fixed and wall-clock-free, so the
//	    scorecard is byte-reproducible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"telamalloc/internal/check"
	"telamalloc/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("telacheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in    = fs.String("in", "", "session transcript to verify (default stdin)")
		diff  = fs.Bool("diff", false, "run the differential oracle sweep instead of verifying a transcript")
		seeds = fs.Int("seeds", 8, "seeds per family for -diff")
		out   = fs.String("out", "", "write the -diff scorecard here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		return runDiff(*seeds, *out, stdout, stderr)
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "telacheck: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	return verifySession(r, stdout, stderr)
}

// verifySession pairs request and report lines by id and verifies each
// pair. Protocol-only reports with no id (e.g. a bad-request rejection of
// an unparseable line) are ignored: there is nothing to verify them
// against.
func verifySession(r io.Reader, stdout, stderr io.Writer) int {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	requests := make(map[string]wire.Request)
	verified, violations := 0, 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// A report line always carries "outcome"; a request never does.
		var probe struct {
			ID      string `json:"id"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			fmt.Fprintf(stderr, "telacheck: line %d: not valid JSON: %v\n", lineNo, err)
			violations++
			continue
		}
		if probe.Outcome == "" {
			var req wire.Request
			if err := json.Unmarshal(raw, &req); err != nil {
				fmt.Fprintf(stderr, "telacheck: line %d: bad request: %v\n", lineNo, err)
				violations++
				continue
			}
			requests[req.ID] = req
			continue
		}
		var resp wire.Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			fmt.Fprintf(stderr, "telacheck: line %d: bad report: %v\n", lineNo, err)
			violations++
			continue
		}
		if resp.ID == "" {
			continue // protocol-level rejection of an unparseable line
		}
		req, ok := requests[resp.ID]
		if !ok {
			fmt.Fprintf(stderr, "telacheck: line %d: report for unknown request id %q\n", lineNo, resp.ID)
			violations++
			continue
		}
		delete(requests, resp.ID)
		if rep := check.Wire(req, resp); !rep.OK() {
			for _, v := range rep.Violations {
				fmt.Fprintf(stderr, "telacheck: request %s: %s\n", resp.ID, v)
				violations++
			}
			continue
		}
		verified++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(stderr, "telacheck: read: %v\n", err)
		return 2
	}
	for id := range requests {
		fmt.Fprintf(stderr, "telacheck: request %s was never answered\n", id)
		violations++
	}
	fmt.Fprintf(stdout, "telacheck: %d reports verified, %d violations\n", verified, violations)
	if violations > 0 {
		return 1
	}
	return 0
}

// runDiff executes the differential sweep and writes the scorecard.
func runDiff(seeds int, outPath string, stdout, stderr io.Writer) int {
	cfg := check.DiffConfig{}
	for s := int64(1); s <= int64(seeds); s++ {
		cfg.Seeds = append(cfg.Seeds, s)
	}
	card, verdicts, err := check.RunDifferential(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "telacheck: %v\n", err)
		return 2
	}
	fatal := 0
	for _, v := range verdicts {
		if v.SolvedOnInfeasible {
			fmt.Fprintf(stderr, "telacheck: %s seed %d: ladder claimed a packing on an oracle-infeasible instance\n",
				v.Family, v.Seed)
			fatal++
		}
		if v.CheckerViolations > 0 {
			fmt.Fprintf(stderr, "telacheck: %s seed %d: %d independent-checker rejections\n",
				v.Family, v.Seed, v.CheckerViolations)
			fatal++
		}
	}
	enc, err := json.MarshalIndent(card, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "telacheck: %v\n", err)
		return 2
	}
	enc = append(enc, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			fmt.Fprintf(stderr, "telacheck: %v\n", err)
			return 2
		}
	} else {
		stdout.Write(enc)
	}
	fmt.Fprintf(stdout, "telacheck: %d instances, oracle solved %d / infeasible %d / budget %d; ladder solved %d; gap %.1f%%\n",
		card.Totals.Instances, card.Totals.OracleSolved, card.Totals.OracleInfeasible, card.Totals.OracleBudget,
		card.Totals.LadderSolved, card.Totals.SolveRateGapPct)
	if fatal > 0 {
		return 1
	}
	return 0
}
