// Command trainml collects imitation-learning data and trains the learned
// backtracking model of §6, saving it as JSON so it can be "baked into"
// deployments (loaded via telamalloc.LoadBacktrackModel).
//
// Usage:
//
//	trainml -out model.json                  # train on the benchmark proxies
//	trainml -out model.json -random 32       # add 32 random tight instances
//	trainml -out model.json -report          # also print feature importance
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/gbt"
	"telamalloc/internal/ilp"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/workload"
)

func main() {
	var (
		outPath     = flag.String("out", "model.json", "where to write the trained model")
		seed        = flag.Int64("seed", 1, "training seed")
		randomN     = flag.Int("random", 24, "extra random tight training instances")
		searchSteps = flag.Int64("search-steps", 100000, "step cap per collection search")
		oracleSteps = flag.Int64("oracle-steps", 20000, "node cap per ILP oracle probe")
		report      = flag.Bool("report", false, "print RMSE and feature importance")
	)
	flag.Parse()

	start := time.Now()
	var problems []*buffers.Problem
	for _, m := range workload.Models {
		p := m.Generate(*seed)
		peak := buffers.Contention(p).Peak()
		p.Memory = peak // ratios applied by the collector
		problems = append(problems, p)
	}
	for i := 0; i < *randomN; i++ {
		problems = append(problems, workload.Random(*seed+1000+int64(i), 101))
	}
	fmt.Printf("collecting from %d problems x 4 memory ratios ...\n", len(problems))
	ds := mlpolicy.CollectDataset(problems, []int{100, 103, 107, 112}, *seed, *searchSteps, ilp.Options{MaxSteps: *oracleSteps})
	if len(ds.X) == 0 {
		fmt.Fprintln(os.Stderr, "no training samples collected (searches solved without major backtracks)")
		os.Exit(1)
	}
	fmt.Printf("collected %d samples in %v\n", len(ds.X), time.Since(start).Round(time.Millisecond))

	forest, err := mlpolicy.TrainModel(ds, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := forest.Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d trees)\n", *outPath, len(forest.Trees))

	if *report {
		fmt.Printf("training RMSE: %.3f\n", forest.RMSE(ds))
		fmt.Println("feature importance (mean RMSE increase):")
		for i, v := range gbt.PermutationImportance(forest, ds, *seed) {
			fmt.Printf("  %-22s %8.4f\n", mlpolicy.FeatureNames[i], v)
		}
	}
}
