// Command experiments regenerates the paper's tables and figures from the
// reimplemented system. Each experiment prints the same rows/series the
// paper reports; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	experiments -exp all                 # everything (slow)
//	experiments -exp table1,fig12        # specific experiments
//	experiments -exp fig14 -configs 120  # reduced-scale sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"telamalloc/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: table1,table2,fig3,fig12,fig13,fig14,fig15,fig16,fig17,fig18,fig19,longtail,ablation,all")
		seed     = flag.Int64("seed", 1, "workload generation seed")
		configs  = flag.Int("configs", 0, "configurations for the large sweeps (default 1192)")
		deadline = flag.Duration("solver-deadline", 0, "per-instance exact-solver deadline (default 20s)")
		maxSteps = flag.Int64("max-steps", 0, "step cap for step-counted experiments (default 500000)")
		workers  = flag.Int("workers", 0, "worker pool size (default NumCPU)")
		repeats  = flag.Int("repeats", 0, "timed repetitions per measurement (default 3)")
		parallel = flag.Int("parallel", 0, "subproblem parallelism per TelaMalloc solve (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	opts := harness.Options{
		Seed:           *seed,
		Configs:        *configs,
		SolverDeadline: *deadline,
		MaxSteps:       *maxSteps,
		Workers:        *workers,
		Repeats:        *repeats,
		Parallelism:    *parallel,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }
	out := os.Stdout

	// The ML-dependent experiments share one trained model.
	var model *harness.TrainedModel
	needModel := all || want["fig13"] || want["fig15"] || want["fig16"] || want["fig17"] || want["longtail"]
	if needModel {
		start := time.Now()
		fmt.Fprintf(out, "[training backtrack model ...]\n")
		var err error
		model, err = harness.TrainBacktrackModel(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "training failed: %v (ML experiments skipped)\n", err)
			model = nil
		} else {
			fmt.Fprintf(out, "[trained on %d samples in %v]\n\n", model.Samples, time.Since(start).Round(time.Millisecond))
		}
	}

	if run("table1") {
		harness.PrintTable1(out, harness.Table1(opts))
		fmt.Fprintln(out)
	}
	if run("table2") {
		harness.PrintTable2(out, harness.Table2(opts))
		fmt.Fprintln(out)
	}
	if run("fig3") {
		harness.PrintFig3(out, harness.Fig3(opts))
		fmt.Fprintln(out)
	}
	if run("fig12") {
		harness.PrintFig12(out, harness.Fig12(opts, false, nil), false)
		fmt.Fprintln(out)
	}
	if run("fig13") {
		harness.PrintFig12(out, harness.Fig12(opts, true, model), true)
		fmt.Fprintln(out)
	}
	if run("fig14") {
		harness.PrintFig14(out, harness.Fig14(opts))
		fmt.Fprintln(out)
	}
	if model != nil && run("fig15") {
		harness.PrintFig15(out, harness.Fig15(opts, model))
		fmt.Fprintln(out)
	}
	if model != nil && run("fig16") {
		harness.PrintFig16(out, harness.Fig16(opts, model))
		fmt.Fprintln(out)
	}
	if model != nil && run("fig17") {
		harness.PrintFig17(out, harness.Fig17(opts, model))
		fmt.Fprintln(out)
	}
	if run("fig18") {
		harness.PrintFig18(out, harness.Fig18(opts))
		fmt.Fprintln(out)
	}
	if run("fig19") {
		harness.PrintFig19(out, harness.Fig19(opts))
		fmt.Fprintln(out)
	}
	if model != nil && run("longtail") {
		harness.PrintLongTail(out, harness.LongTail(opts, model))
		fmt.Fprintln(out)
	}
	if run("ablation") {
		harness.PrintAblation(out, harness.Ablation(opts))
		fmt.Fprintln(out)
	}
}
