package telamalloc_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"telamalloc"
)

func figure1() telamalloc.Problem {
	return telamalloc.Problem{
		Name:   "figure-1",
		Memory: 10,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 12, Size: 3},
			{Start: 0, End: 7, Size: 3},
			{Start: 3, End: 7, Size: 2},
			{Start: 7, End: 12, Size: 3},
			{Start: 12, End: 16, Size: 5},
			{Start: 12, End: 16, Size: 3},
			{Start: 2, End: 9, Size: 2},
			{Start: 0, End: 3, Size: 2},
			{Start: 16, End: 20, Size: 6},
			{Start: 16, End: 20, Size: 2},
		},
	}
}

func TestAllocateFigure1(t *testing.T) {
	p := figure1()
	sol, stats, err := telamalloc.Allocate(p)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if sol.PeakUsage(p) > p.Memory {
		t.Errorf("peak %d exceeds memory %d", sol.PeakUsage(p), p.Memory)
	}
	if stats.Steps == 0 || stats.Placements != int64(len(p.Buffers)) {
		t.Errorf("stats look wrong: %+v", stats)
	}
}

func TestAllocateInvalidProblem(t *testing.T) {
	p := telamalloc.Problem{Memory: 0}
	if _, _, err := telamalloc.Allocate(p); !errors.Is(err, telamalloc.ErrInvalidProblem) {
		t.Errorf("err = %v, want ErrInvalidProblem", err)
	}
	p = telamalloc.Problem{Memory: 4, Buffers: []telamalloc.Buffer{{Start: 5, End: 2, Size: 1}}}
	if _, _, err := telamalloc.Allocate(p); !errors.Is(err, telamalloc.ErrInvalidProblem) {
		t.Errorf("err = %v, want ErrInvalidProblem", err)
	}
}

func TestAllocateInfeasible(t *testing.T) {
	p := telamalloc.Problem{
		Memory: 4,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
	}
	if _, _, err := telamalloc.Allocate(p); !errors.Is(err, telamalloc.ErrNoSolution) {
		t.Errorf("err = %v, want ErrNoSolution", err)
	}
	if _, err := telamalloc.SolveExact(p, 0, 0); !errors.Is(err, telamalloc.ErrNoSolution) {
		t.Errorf("SolveExact err = %v, want ErrNoSolution", err)
	}
}

func TestAllocateBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := telamalloc.Problem{Memory: 0}
	for i := 0; i < 40; i++ {
		start := rng.Int63n(10)
		p.Buffers = append(p.Buffers, telamalloc.Buffer{
			Start: start, End: start + 2 + rng.Int63n(10), Size: 2 + rng.Int63n(8),
		})
	}
	p.Memory = telamalloc.MinMemoryLowerBound(p)
	_, _, err := telamalloc.Allocate(p, telamalloc.WithMaxSteps(3))
	if err == nil {
		return // solved within 3 steps: fine
	}
	if !errors.Is(err, telamalloc.ErrBudget) && !errors.Is(err, telamalloc.ErrNoSolution) {
		t.Errorf("err = %v", err)
	}
}

func TestBaselineAllocators(t *testing.T) {
	p := figure1()
	p.Memory = 64 // generous so both baselines succeed
	for name, alloc := range map[string]func(telamalloc.Problem) (telamalloc.Solution, error){
		"greedy":  telamalloc.AllocateGreedy,
		"bestfit": telamalloc.AllocateBestFit,
	} {
		sol, err := alloc(p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := sol.Validate(p); err != nil {
			t.Errorf("%s: invalid solution: %v", name, err)
		}
	}
}

func TestSolveExactAndMinimize(t *testing.T) {
	p := telamalloc.Problem{
		Memory: 64,
		Buffers: []telamalloc.Buffer{
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
			{Start: 0, End: 10, Size: 4},
		},
	}
	sol, err := telamalloc.SolveExact(p, 0, time.Second)
	if err != nil {
		t.Fatalf("SolveExact: %v", err)
	}
	if err := sol.Validate(p); err != nil {
		t.Fatal(err)
	}
	limit, minSol, err := telamalloc.MinimizeMemory(p, 0, 5*time.Second)
	if err != nil {
		t.Fatalf("MinimizeMemory: %v", err)
	}
	if limit != 12 {
		t.Errorf("limit = %d, want 12", limit)
	}
	q := p
	q.Memory = limit
	if err := minSol.Validate(q); err != nil {
		t.Error(err)
	}
	if lb := telamalloc.MinMemoryLowerBound(p); lb != 12 {
		t.Errorf("lower bound = %d, want 12", lb)
	}
}

func TestOptionsCombinations(t *testing.T) {
	p := figure1()
	p.Memory = 12 // slightly loose so every variant can solve
	for name, opts := range map[string][]telamalloc.Option{
		"skyline":  {telamalloc.WithSkylinePlacement()},
		"nophases": {telamalloc.WithoutPhases()},
		"nosplit":  {telamalloc.WithoutSubproblemSplit()},
		"timeout":  {telamalloc.WithTimeout(10 * time.Second)},
		"all": {
			telamalloc.WithoutPhases(),
			telamalloc.WithoutSubproblemSplit(),
			telamalloc.WithMaxSteps(100000),
		},
	} {
		sol, _, err := telamalloc.Allocate(p, opts...)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := sol.Validate(p); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
	}
}

func TestBacktrackModelRoundTrip(t *testing.T) {
	// Train a model on tight random problems, save, load, and use it.
	var train []telamalloc.Problem
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 8; k++ {
		p := telamalloc.Problem{}
		for i := 0; i < 24; i++ {
			start := rng.Int63n(16)
			p.Buffers = append(p.Buffers, telamalloc.Buffer{
				Start: start, End: start + 1 + rng.Int63n(10), Size: 1 + rng.Int63n(8),
			})
		}
		p.Memory = telamalloc.MinMemoryLowerBound(p)
		train = append(train, p)
	}
	model, err := telamalloc.TrainBacktrackModel(train, 1, 50000, 15000)
	if err != nil {
		t.Skipf("no trainable data on these seeds: %v", err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := telamalloc.LoadBacktrackModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := train[0]
	sol, _, err := telamalloc.Allocate(p,
		telamalloc.WithBacktrackModel(loaded),
		telamalloc.WithMaxSteps(100000))
	if err == nil {
		if verr := sol.Validate(p); verr != nil {
			t.Fatalf("ML-guided solution invalid: %v", verr)
		}
	}
}

func TestAllocatePropertyValidOrError(t *testing.T) {
	// Property: Allocate either errors or returns a valid packing — never a
	// bogus success.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := telamalloc.Problem{}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			start := rng.Int63n(12)
			p.Buffers = append(p.Buffers, telamalloc.Buffer{
				Start: start,
				End:   start + 1 + rng.Int63n(8),
				Size:  1 + rng.Int63n(8),
				Align: []int64{0, 0, 4}[rng.Intn(3)],
			})
		}
		lb := telamalloc.MinMemoryLowerBound(p)
		p.Memory = lb + rng.Int63n(lb+1)
		sol, _, err := telamalloc.Allocate(p, telamalloc.WithMaxSteps(50000))
		if err != nil {
			return true
		}
		return sol.Validate(p) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStepGateRoundTrip(t *testing.T) {
	var train []telamalloc.Problem
	rng := rand.New(rand.NewSource(6))
	for k := 0; k < 8; k++ {
		p := telamalloc.Problem{}
		for i := 0; i < 24; i++ {
			start := rng.Int63n(16)
			p.Buffers = append(p.Buffers, telamalloc.Buffer{
				Start: start, End: start + 1 + rng.Int63n(10), Size: 1 + rng.Int63n(8),
			})
		}
		p.Memory = telamalloc.MinMemoryLowerBound(p) * 101 / 100
		train = append(train, p)
	}
	gate, err := telamalloc.TrainStepGate(train, 1, 40000)
	if err != nil {
		t.Skipf("gate training found no samples: %v", err)
	}
	var buf bytes.Buffer
	if err := gate.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := telamalloc.LoadStepGate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := train[0]
	sol, _, err := telamalloc.Allocate(p,
		telamalloc.WithStepGate(loaded, 0),
		telamalloc.WithMaxSteps(100000))
	if err == nil {
		if verr := sol.Validate(p); verr != nil {
			t.Fatalf("gated solution invalid: %v", verr)
		}
	}
}
