module telamalloc

go 1.22
