package telamalloc

// In-package tests for AllocatePipeline: the fault-injection cases reach
// the unexported core.Config.Hook through Option literals, which an
// external test package could not construct.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"telamalloc/internal/buffers"
	"telamalloc/internal/faultinject"
	"telamalloc/internal/workload"
)

// fromInternal converts a generated workload back to the public type.
func fromInternal(q *buffers.Problem) Problem {
	p := Problem{Memory: q.Memory, Name: q.Name}
	for _, b := range q.Buffers {
		p.Buffers = append(p.Buffers, Buffer{Start: b.Start, End: b.End, Size: b.Size, Align: b.Align})
	}
	return p
}

// easyProblem is solvable by the greedy heuristic.
func easyProblem() Problem {
	p := fromInternal(workload.NonOverlapping(12, 1))
	p.Memory *= 2
	return p
}

// tightProblem defeats both heuristics but the search solves it (~60
// steps, 4 independent components) — probed, not guessed.
func tightProblem(t *testing.T) Problem {
	t.Helper()
	p := fromInternal(workload.MultiComponent(4, 15, 105, 1))
	if _, err := AllocateGreedy(p); err == nil {
		t.Fatal("fixture drifted: greedy solves the tight problem")
	}
	if _, err := AllocateBestFit(p); err == nil {
		t.Fatal("fixture drifted: best-fit solves the tight problem")
	}
	return p
}

// infeasibleProblem is provably unsatisfiable: two co-live buffers that
// together exceed memory.
func infeasibleProblem() Problem {
	return Problem{
		Memory: 4,
		Buffers: []Buffer{
			{Start: 0, End: 5, Size: 4},
			{Start: 0, End: 5, Size: 4},
		},
	}
}

// withFaultHook wires a fault injector into the solver's test-only hook.
func withFaultHook(inj *faultinject.Injector) Option {
	return func(c *config) { c.core.Hook = inj.Hook }
}

func stageByName(t *testing.T, res PipelineResult, name string) StageReport {
	t.Helper()
	for _, rep := range res.Stages {
		if rep.Stage == name {
			return rep
		}
	}
	t.Fatalf("no report for stage %q in %+v", name, res.Stages)
	return StageReport{}
}

func TestPipelineWinnerGreedy(t *testing.T) {
	p := easyProblem()
	res, err := AllocatePipeline(p)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if res.Winner != StageGreedy || res.Degraded {
		t.Fatalf("winner %q degraded=%v, want greedy full packing", res.Winner, res.Degraded)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("got %d stage reports, want 4", len(res.Stages))
	}
	for _, later := range []string{StageBestFit, StageSearch, StageSpill} {
		rep := stageByName(t, res, later)
		if !rep.Skipped || !strings.Contains(rep.SkipReason, "earlier stage succeeded") {
			t.Errorf("stage %s: skipped=%v reason=%q, want skipped after the win", later, rep.Skipped, rep.SkipReason)
		}
	}
}

func TestPipelineWinnerSearch(t *testing.T) {
	p := tightProblem(t)
	res, err := AllocatePipeline(p, WithMaxSteps(100000))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if res.Winner != StageSearch || res.Degraded {
		t.Fatalf("winner %q degraded=%v, want search full packing", res.Winner, res.Degraded)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("invalid solution: %v", err)
	}
	for _, failed := range []string{StageGreedy, StageBestFit} {
		rep := stageByName(t, res, failed)
		if rep.Skipped || !errors.Is(rep.Err, ErrNoSolution) {
			t.Errorf("stage %s: skipped=%v err=%v, want a recorded ErrNoSolution failure", failed, rep.Skipped, rep.Err)
		}
	}
	search := stageByName(t, res, StageSearch)
	if search.Stats.Steps == 0 || search.StepBudget == 0 {
		t.Errorf("search report missing effort accounting: %+v", search)
	}
}

func TestPipelineDegradesToSpill(t *testing.T) {
	p := infeasibleProblem()
	res, err := AllocatePipeline(p)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if res.Winner != StageSpill || !res.Degraded || res.Spill == nil {
		t.Fatalf("winner %q degraded=%v spill=%v, want degraded spill plan", res.Winner, res.Degraded, res.Spill)
	}
	if len(res.Spill.Spilled) != 1 {
		t.Fatalf("spilled %v, want exactly one buffer", res.Spill.Spilled)
	}
	if res.LowerBound != 8 || res.Memory != 4 {
		t.Fatalf("evidence lb=%d mem=%d, want 8 > 4", res.LowerBound, res.Memory)
	}
	// Packing stages must have been skipped on the infeasibility proof, not
	// run to their budgets.
	for _, skipped := range []string{StageGreedy, StageBestFit, StageSearch} {
		rep := stageByName(t, res, skipped)
		if !rep.Skipped || !strings.Contains(rep.SkipReason, "provably infeasible") {
			t.Errorf("stage %s: skipped=%v reason=%q, want infeasibility skip", skipped, rep.Skipped, rep.SkipReason)
		}
	}
	// The spilled buffer is off-chip (-1); the retained one is placed.
	spilled := res.Spill.Spilled[0]
	if res.Solution.Offsets[spilled] != -1 {
		t.Errorf("spilled buffer offset %d, want -1", res.Solution.Offsets[spilled])
	}
	if off := res.Solution.Offsets[1-spilled]; off < 0 || off+p.Buffers[1-spilled].Size > p.Memory {
		t.Errorf("retained buffer at %d does not fit", off)
	}
}

func TestPipelinePinnedSpillCosts(t *testing.T) {
	p := infeasibleProblem()
	res, err := AllocatePipeline(p, WithSpillCosts([]int64{1, 100}, []bool{false, false}))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(res.Spill.Spilled) != 1 || res.Spill.Spilled[0] != 0 || res.Spill.SpillCost != 1 {
		t.Fatalf("plan %+v, want the cheap buffer 0 evicted at cost 1", res.Spill)
	}
	// Pinning the cheap buffer forces the expensive eviction.
	res, err = AllocatePipeline(p, WithSpillCosts([]int64{1, 100}, []bool{true, false}))
	if err != nil {
		t.Fatalf("pipeline with pin: %v", err)
	}
	if len(res.Spill.Spilled) != 1 || res.Spill.Spilled[0] != 1 {
		t.Fatalf("plan %+v, want pinned buffer kept", res.Spill)
	}
}

func TestPipelineCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AllocatePipeline(easyProblem(), WithContext(ctx))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err %v, want ErrCancelled", err)
	}
	for _, rep := range res.Stages {
		if !rep.Skipped {
			t.Errorf("stage %s ran despite pre-cancelled context", rep.Stage)
		}
	}
}

func TestPipelineBudgetExhausted(t *testing.T) {
	p := tightProblem(t)
	res, err := AllocatePipeline(p, WithStages(StageSearch), WithMaxSteps(3))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err %v, want ErrBudget", err)
	}
	if res.LowerBound == 0 {
		t.Error("hard failure must still carry the lower-bound evidence")
	}
	if rep := stageByName(t, res, StageSearch); !errors.Is(rep.Err, ErrBudget) {
		t.Errorf("search report err %v, want ErrBudget", rep.Err)
	}
}

func TestPipelineLadderValidation(t *testing.T) {
	for name, opts := range map[string][]Option{
		"unknown":   {WithStages("warp-drive")},
		"duplicate": {WithStages(StageGreedy, StageGreedy)},
		"empty":     {WithStages()},
	} {
		if _, err := AllocatePipeline(easyProblem(), opts...); !errors.Is(err, ErrInvalidProblem) {
			t.Errorf("%s ladder: err %v, want ErrInvalidProblem", name, err)
		}
	}
}

func TestPipelineCustomLadder(t *testing.T) {
	p := tightProblem(t)
	res, err := AllocatePipeline(p, WithStages(StageSearch, StageSpill), WithMaxSteps(100000))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if res.Winner != StageSearch || len(res.Stages) != 2 {
		t.Fatalf("winner %q with %d stages, want search out of 2", res.Winner, len(res.Stages))
	}
}

// TestPipelineContainsInjectedPanic: a panic at a solver decision point
// inside the search stage is contained, attributed, and the ladder
// escalates to the spill stage, which still produces a full packing. No
// panic escapes the public API.
func TestPipelineContainsInjectedPanic(t *testing.T) {
	p := tightProblem(t)
	inj := faultinject.New(faultinject.Fault{Point: "group0", After: 1, Kind: faultinject.Panic})
	res, err := AllocatePipeline(p, WithMaxSteps(100000), withFaultHook(inj))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	search := stageByName(t, res, StageSearch)
	if !errors.Is(search.Err, ErrInternal) {
		t.Fatalf("search err %v, want ErrInternal from the injected panic", search.Err)
	}
	// The panic fault is one-shot, so the spill stage's first attempt packs
	// the full problem: a clean recovery with zero evictions.
	if res.Winner != StageSpill || res.Degraded {
		t.Fatalf("winner %q degraded=%v, want clean spill-stage recovery", res.Winner, res.Degraded)
	}
	if err := res.Solution.Validate(p); err != nil {
		t.Fatalf("recovered solution invalid: %v", err)
	}
	if fired := inj.Fired(); len(fired) != 1 {
		t.Fatalf("fired faults %v, want exactly one", fired)
	}
}

// TestPipelinePanicInStageBoundary: a panic raised at the stage boundary
// itself (outside core.Solve's containment) is caught by the pipeline's own
// recover and the ladder still escalates.
func TestPipelinePanicInStageBoundary(t *testing.T) {
	p := easyProblem()
	boom := func(c *config) {
		c.core.Hook = func(point string) bool {
			if point == "stage:"+StageGreedy {
				panic("stage boundary fault")
			}
			return false
		}
	}
	res, err := AllocatePipeline(p, Option(boom))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	greedy := stageByName(t, res, StageGreedy)
	if !errors.Is(greedy.Err, ErrInternal) || !strings.Contains(greedy.Err.Error(), "stage greedy") {
		t.Fatalf("greedy err %v, want attributed ErrInternal", greedy.Err)
	}
	if res.Winner != StageBestFit {
		t.Fatalf("winner %q, want best-fit after the greedy crash", res.Winner)
	}
}

// TestPipelineStarvationEscalates: sticky budget starvation injected into
// the search makes it report ErrBudget; with no spill stage configured the
// pipeline surfaces that verdict.
func TestPipelineStarvationEscalates(t *testing.T) {
	p := tightProblem(t)
	inj := faultinject.New(faultinject.Fault{Point: "", After: 1, Kind: faultinject.Starve})
	res, err := AllocatePipeline(p,
		WithStages(StageGreedy, StageSearch),
		WithMaxSteps(100000), withFaultHook(inj))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err %v, want ErrBudget from starved search", err)
	}
	if rep := stageByName(t, res, StageSearch); !errors.Is(rep.Err, ErrBudget) {
		t.Errorf("search report err %v, want ErrBudget", rep.Err)
	}
}

// TestPipelineDeterministicAcrossParallelism: the pipeline inherits the
// solver's determinism contract — byte-identical offsets at every
// parallelism level.
func TestPipelineDeterministicAcrossParallelism(t *testing.T) {
	p := tightProblem(t)
	var want []int64
	for _, par := range []int{1, 2, 0} {
		res, err := AllocatePipeline(p, WithMaxSteps(100000), WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if want == nil {
			want = res.Solution.Offsets
			continue
		}
		for i, off := range res.Solution.Offsets {
			if off != want[i] {
				t.Fatalf("parallelism %d: offset[%d]=%d, want %d", par, i, off, want[i])
			}
		}
	}
}

// TestPipelineStageShares: a custom share split changes the carved step
// budgets, and unused budget rolls forward to later stages.
func TestPipelineStageShares(t *testing.T) {
	p := tightProblem(t)
	res, err := AllocatePipeline(p,
		WithStages(StageSearch, StageSpill),
		WithMaxSteps(1000),
		WithStageShare(StageSearch, 3),
		WithStageShare(StageSpill, 1))
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	search := stageByName(t, res, StageSearch)
	if search.StepBudget != 750 {
		t.Errorf("search budget %d, want 750 (3/4 of 1000)", search.StepBudget)
	}
}

func TestPipelineInvalidProblem(t *testing.T) {
	if _, err := AllocatePipeline(Problem{Memory: 0}); !errors.Is(err, ErrInvalidProblem) {
		t.Errorf("err %v, want ErrInvalidProblem", err)
	}
}
