// Benchmarks regenerating each table and figure of the paper's evaluation
// at benchmark-friendly scale. The full-scale regeneration lives in
// cmd/experiments; these benches exercise the same code paths so that
// `go test -bench=. -benchmem` documents per-component costs.
package telamalloc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"telamalloc/internal/buffers"
	"telamalloc/internal/core"
	"telamalloc/internal/cp"
	"telamalloc/internal/gbt"
	"telamalloc/internal/heuristics"
	"telamalloc/internal/ilp"
	"telamalloc/internal/mlpolicy"
	"telamalloc/internal/telamon"
	"telamalloc/internal/workload"
	"telamalloc/internal/xlasim"
)

// --- Table 1: microbenchmarks ---------------------------------------------

func BenchmarkTable1NonOverlapping1K(b *testing.B) {
	p := workload.NonOverlapping(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Solve(p, core.Config{})
		if res.Status != telamon.Solved {
			b.Fatal("unsolved")
		}
	}
}

func BenchmarkTable1NonOverlapping10K(b *testing.B) {
	p := workload.NonOverlapping(10000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Solve(p, core.Config{})
		if res.Status != telamon.Solved {
			b.Fatal("unsolved")
		}
	}
}

func BenchmarkTable1FullOverlap100(b *testing.B) {
	p := workload.FullOverlap(100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Solve(p, core.Config{})
		if res.Status != telamon.Solved {
			b.Fatal("unsolved")
		}
	}
}

func BenchmarkTable1FullOverlap300(b *testing.B) {
	// The paper's full-overlap-1K takes ~100s per run; 300 buffers shows
	// the same quadratic constraint growth at benchmark-friendly cost.
	p := workload.FullOverlap(300, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Solve(p, core.Config{})
		if res.Status != telamon.Solved {
			b.Fatal("unsolved")
		}
	}
}

// --- Table 2: greedy heuristic --------------------------------------------

func BenchmarkTable2Heuristic(b *testing.B) {
	for _, m := range workload.Models {
		p := m.Generate(1)
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				heuristics.GreedyContentionUnbounded(p)
			}
		})
	}
}

// --- Figure 3: usage profiles ---------------------------------------------

func BenchmarkFig3UsageProfiles(b *testing.B) {
	m, _ := workload.ByName("Image Model 1")
	p := m.Generate(1)
	bfSol, _ := heuristics.BestFitUnbounded(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.UsageProfile(p, bfSol)
	}
}

// --- Figures 12/13: allocation time per model ------------------------------

func benchProblem(name string) *buffers.Problem {
	m, _ := workload.ByName(name)
	p := m.Generate(1)
	peak := buffers.Contention(p).Peak()
	p.Memory = peak * 110 / 100
	return p
}

func BenchmarkFig12TelaMalloc(b *testing.B) {
	for _, name := range []string{"FPN Model", "OpenPose", "Image Model 1"} {
		p := benchProblem(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Solve(p, core.Config{MaxSteps: 500000})
				if res.Status != telamon.Solved {
					b.Fatalf("unsolved: %+v", res.Stats)
				}
			}
		})
	}
}

func BenchmarkFig12ILP(b *testing.B) {
	// The exact solver gets a wall budget per iteration; hard models hit it
	// (that *is* the paper's result — this bench documents the contrast).
	// Timeout is resolved at solve start by the ILP layer, so the budget
	// cannot skew between option construction and the search's first node
	// no matter how slowly the CI host schedules the loop.
	opts := ilp.Options{Timeout: 2 * time.Second}
	for _, name := range []string{"FPN Model", "OpenPose"} {
		p := benchProblem(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ilp.Solve(p, nil, opts)
			}
		})
	}
}

func BenchmarkFig13CPEncoding(b *testing.B) {
	p := benchProblem("FPN Model")
	opts := ilp.Options{Rule: ilp.BranchFirstUnresolved, Timeout: 2 * time.Second}
	for i := 0; i < b.N; i++ {
		ilp.Solve(p, nil, opts)
	}
}

// --- Figure 14: strategy ablation ------------------------------------------

func BenchmarkFig14Strategies(b *testing.B) {
	p := workload.Random(7, 105)
	b.Run("telamalloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Solve(p, core.Config{MaxSteps: 100000})
		}
	})
	for _, s := range core.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SolveWithStrategy(p, s, 100000)
			}
		})
	}
}

// --- Figures 15/16/17: learned backtracking --------------------------------

var (
	benchForestOnce sync.Once
	benchForest     *gbt.Forest
)

// benchModel trains a small forest once, shared by the ML benches.
func benchModel(b *testing.B) *gbt.Forest {
	benchForestOnce.Do(func() {
		var problems []*buffers.Problem
		for seed := int64(0); seed < 6; seed++ {
			problems = append(problems, workload.Random(seed, 101))
		}
		ds := mlpolicy.CollectDataset(problems, []int{100, 105}, 1, 40000, ilp.Options{MaxSteps: 15000})
		if len(ds.X) == 0 {
			return
		}
		f, err := mlpolicy.TrainModel(ds, 1)
		if err == nil {
			benchForest = f
		}
	})
	if benchForest == nil {
		b.Skip("no training data collected")
	}
	return benchForest
}

func BenchmarkFig15MLGuidedSearch(b *testing.B) {
	forest := benchModel(b)
	p := workload.Random(42, 101)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := mlpolicy.NewChooser(forest, p)
		core.Solve(p, core.Config{MaxSteps: 50000, Chooser: ch, DisableSplit: true})
	}
}

func BenchmarkFig16Inference(b *testing.B) {
	forest := benchModel(b)
	for _, n := range []int{1, 10, 30} {
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = make([]float64, mlpolicy.NumFeatures)
			for j := range xs[i] {
				xs[i][j] = float64((i+j)%10) / 10
			}
		}
		out := make([]float64, n)
		b.Run(benchName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				forest.PredictBatch(xs, out)
			}
		})
	}
}

func benchName(n int) string {
	switch n {
	case 1:
		return "candidates-1"
	case 10:
		return "candidates-10"
	default:
		return "candidates-30"
	}
}

func BenchmarkFig17Importance(b *testing.B) {
	forest := benchModel(b)
	// Synthetic eval set with the right width.
	var ds gbt.Dataset
	for i := 0; i < 256; i++ {
		x := make([]float64, mlpolicy.NumFeatures)
		for j := range x {
			x[j] = float64((i*j)%13) / 13
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, float64(i%11))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gbt.PermutationImportance(forest, ds, 1)
	}
}

// --- Figure 18: XLA repacking ----------------------------------------------

func BenchmarkFig18Repacker(b *testing.B) {
	prog := xlasim.FromWorkload(workload.Models[0], 1, 100, 70)
	tm := core.Allocator{Config: core.Config{MaxSteps: 100000}}
	bf := heuristics.BestFit{}
	b.Run("telamalloc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xlasim.Assign(prog, tm)
		}
	})
	b.Run("best-fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			xlasim.Assign(prog, bf)
		}
	})
}

// --- Figure 19: contention profile -----------------------------------------

func BenchmarkFig19Contention(b *testing.B) {
	p := workload.GenOpenPose(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buffers.Contention(p)
	}
}

// --- Supporting component benches ------------------------------------------

func BenchmarkCPModelBuild(b *testing.B) {
	p := workload.FullOverlap(500, 1)
	ov := buffers.ComputeOverlaps(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.NewModel(p, ov)
	}
}

func BenchmarkOverlapSweep(b *testing.B) {
	p := workload.FullOverlap(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buffers.ComputeOverlaps(p)
	}
}

// --- Parallel subproblem solving --------------------------------------------

// BenchmarkParallelSolveMultiComponent measures the wall-clock effect of
// dispatching independent subproblems (§5.3 splits) to the worker pool: the
// workload has 8 equally tight components (the generator normalises every
// cluster to the same contention peak), so with N≥4 CPUs Parallelism=4 runs
// markedly faster than the sequential solve while producing byte-identical
// results. On a single-CPU host the three sub-benches instead document that
// pool dispatch adds no measurable overhead.
func BenchmarkParallelSolveMultiComponent(b *testing.B) {
	p := workload.MultiComponent(8, 60, 104, 1)
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Solve(p, core.Config{Parallelism: par})
				if res.Status != telamon.Solved {
					b.Fatalf("unsolved: %+v", res.Stats)
				}
			}
		})
	}
}

// --- Scaling: thousands-of-buffers workloads --------------------------------

func BenchmarkStressModels(b *testing.B) {
	for _, m := range workload.StressModels {
		p := m.Generate(1)
		peak := buffers.Contention(p).Peak()
		p.Memory = peak * 115 / 100
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.Solve(p, core.Config{MaxSteps: 500000})
				if res.Status != telamon.Solved {
					b.Fatalf("unsolved: %+v", res.Stats)
				}
			}
		})
	}
}

func BenchmarkGreedyHeuristicStress(b *testing.B) {
	p := workload.GenDeepChain(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heuristics.GreedyContentionUnbounded(p)
	}
}
